#!/bin/sh
# Host-performance benchmarks. Two modes:
#
#   bench.sh [-j N] [-o FILE] [-quick|-full]
#       Suite parallelism record: run the figure suite serially (-j 1) and
#       parallel (-j N), verify the outputs are byte-identical, and emit
#       BENCH_parallel.json with both runs' wall-clock and event
#       throughput, plus the per-message trace-overhead record
#       (BenchmarkTraceOverhead: events/sec with tracing off, sampled
#       1-in-16, and full). On a single-CPU host the speedup is reported
#       as null with a reason — a wall-clock ratio taken where -j cannot
#       help is noise, not a parallelism measurement.
#
#   bench.sh -engine [-o FILE]
#       Engine hot-path record: run the macro suite-throughput benchmark
#       (BenchmarkSuiteEventsPerSec) plus the park/wake, typed-event and
#       transfer-chunk micro-benchmarks and the conservative-PDES
#       shard-scaling sweep (BenchmarkShardScaling: events/sec, window
#       count and allocs/op at 1/2/4/8 shards — raw per-count numbers
#       only; a cross-shard-count speedup ratio is a host statement, not
#       a model statement, so none is recorded) plus the 1024-rank Clos
#       scale-out record (BenchmarkScaleWorld: events/sec, bytes/rank,
#       allocs/op and peak live heap per interconnect), and emit
#       BENCH_engine.json with events/sec and allocs/op. The committed
#       copy is the baseline CI's perf-smoke and scale-perf jobs diff
#       against (warn at >10% events/sec regression; scale-perf hard-fails
#       a >5% bytes/rank regression). The before/after block records the
#       full-suite measurement taken at the overhaul boundary (both
#       binaries interleaved on one host); see docs/MODEL.md §15.
#
#   -j N     parallel worker count (default: host core count)
#   -o FILE  output path (default BENCH_parallel.json / BENCH_engine.json)
#   -full    benchmark the full class B suite instead of quick mode
#            (minutes per run; what the nightly job records)
set -eu
cd "$(dirname "$0")/.."

host_cpus=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)
jobs=$host_cpus
out=""
mode="-quick"
engine=""
while [ $# -gt 0 ]; do
    case "$1" in
    -j)
        shift
        jobs="$1"
        ;;
    -o)
        shift
        out="$1"
        ;;
    -quick) mode="-quick" ;;
    -full) mode="" ;;
    -engine) engine=1 ;;
    *)
        echo "usage: bench.sh [-engine] [-j N] [-o FILE] [-quick|-full]" >&2
        exit 2
        ;;
    esac
    shift
done

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

if [ -n "$engine" ]; then
    out=${out:-BENCH_engine.json}

    echo "== macro: quick suite throughput (3 rounds) ==" >&2
    go test -run '^$' -bench 'BenchmarkSuiteEventsPerSec$' -benchtime 3x \
        ./internal/experiments/ >"$tmp/macro.txt"
    echo "== micro: park/wake, typed events, timers, transfer chunks ==" >&2
    go test -run '^$' -benchmem \
        -bench 'BenchmarkEngineCall$|BenchmarkProcParkWake$|BenchmarkTimerArmStop$' \
        ./internal/sim/ >"$tmp/sim.txt"
    go test -run '^$' -benchmem -bench 'BenchmarkTransferChunk$' \
        ./internal/fabric/ >"$tmp/fabric.txt"
    echo "== shard scaling: conservative PDES events/sec at 1/2/4/8 shards ==" >&2
    go test -run '^$' -benchmem -bench 'BenchmarkShardScaling$' -benchtime 3x \
        ./internal/sim/ >"$tmp/shard.txt"
    echo "== scale-out: 1024-rank Clos worlds (events/sec, bytes/rank) ==" >&2
    go test -run '^$' -benchmem -bench 'BenchmarkScaleWorld$' -benchtime 3x \
        ./internal/experiments/ >"$tmp/scale.txt"

    # metric FILE BENCH UNIT: the value reported with UNIT on BENCH's line.
    metric() {
        awk -v name="$2" -v unit="$3" \
            '$1 ~ "^"name {for (i = 2; i < NF; i++) if ($(i+1) == unit) {print $i; exit}}' "$1"
    }
    # go test suffixes benchmark names with -GOMAXPROCS (no suffix = 1).
    gmp=$(awk '$1 ~ /^BenchmarkSuiteEventsPerSec/ {n = split($1, a, "-"); if (n > 1) print a[n]; exit}' "$tmp/macro.txt")
    [ -n "$gmp" ] || gmp=1

    # shard_m N UNIT: the N-shard sub-benchmark's metric.
    shard_m() { metric "$tmp/shard.txt" "BenchmarkShardScaling/shards=$1" "$2"; }

    # scale_m NET UNIT: a BenchmarkScaleWorld sub-benchmark's metric.
    scale_m() { metric "$tmp/scale.txt" "BenchmarkScaleWorld/$1" "$2"; }

    micro() { # NAME FILE BENCH -> one JSON object line
        printf '    "%s": {"ns_per_op": %s, "allocs_per_op": %s}' \
            "$1" "$(metric "$2" "$3" ns/op)" "$(metric "$2" "$3" allocs/op)"
    }

    {
        printf '{\n'
        printf '  "host_cpus": %s,\n' "$host_cpus"
        printf '  "gomaxprocs": %s,\n' "$gmp"
        printf '  "go": "%s",\n' "$(go env GOVERSION)"
        printf '  "suite": {\n'
        printf '    "bench": "BenchmarkSuiteEventsPerSec",\n'
        printf '    "mode": "quick",\n'
        printf '    "events_per_op": %s,\n' "$(metric "$tmp/macro.txt" BenchmarkSuiteEventsPerSec events/op)"
        printf '    "events_per_sec": %s\n' "$(metric "$tmp/macro.txt" BenchmarkSuiteEventsPerSec events/s)"
        printf '  },\n'
        printf '  "shard_scaling": {\n'
        printf '    "bench": "BenchmarkShardScaling",\n'
        printf '    "workload": "8 node domains + switch domain, 96-op compute grain, 400 rounds",\n'
        printf '    "events_per_sec": {"shards_1": %s, "shards_2": %s, "shards_4": %s, "shards_8": %s},\n' \
            "$(shard_m 1 events/s)" "$(shard_m 2 events/s)" "$(shard_m 4 events/s)" "$(shard_m 8 events/s)"
        printf '    "windows_per_op": {"shards_1": %s, "shards_2": %s, "shards_4": %s, "shards_8": %s},\n' \
            "$(shard_m 1 windows/op)" "$(shard_m 2 windows/op)" "$(shard_m 4 windows/op)" "$(shard_m 8 windows/op)"
        printf '    "allocs_per_op": {"shards_1": %s, "shards_2": %s, "shards_4": %s, "shards_8": %s},\n' \
            "$(shard_m 1 allocs/op)" "$(shard_m 2 allocs/op)" "$(shard_m 4 allocs/op)" "$(shard_m 8 allocs/op)"
        printf '    "speedup_note": "no cross-shard-count ratio is recorded: it measures host parallelism, not the model; compare each count against the committed baseline"\n'
        printf '  },\n'
        printf '  "scale_1k": {\n'
        printf '    "bench": "BenchmarkScaleWorld",\n'
        printf '    "workload": "1024 ranks on a 3-level radix-24 2:1 Clos, neighbor exchange + allreduce",\n'
        printf '    "events_per_sec": {"IBA": %s, "Myri": %s, "QSN": %s},\n' \
            "$(scale_m IBA events/s)" "$(scale_m Myri events/s)" "$(scale_m QSN events/s)"
        printf '    "bytes_per_rank": {"IBA": %s, "Myri": %s, "QSN": %s},\n' \
            "$(scale_m IBA bytes/rank)" "$(scale_m Myri bytes/rank)" "$(scale_m QSN bytes/rank)"
        printf '    "allocs_per_op": {"IBA": %s, "Myri": %s, "QSN": %s},\n' \
            "$(scale_m IBA allocs/op)" "$(scale_m Myri allocs/op)" "$(scale_m QSN allocs/op)"
        printf '    "peak_heap_bytes": {"IBA": %s, "Myri": %s, "QSN": %s}\n' \
            "$(scale_m IBA heap-bytes)" "$(scale_m Myri heap-bytes)" "$(scale_m QSN heap-bytes)"
        printf '  },\n'
        printf '  "overhaul_reference": {\n'
        printf '    "note": "full suite (-j 1), both binaries interleaved on the same single-CPU host at the overhaul commit; see docs/MODEL.md \\u00a715",\n'
        printf '    "events_dispatched": 1777554495,\n'
        printf '    "before_events_per_sec": 4102333,\n'
        printf '    "after_events_per_sec": 6628071,\n'
        printf '    "speedup": 1.62\n'
        printf '  },\n'
        printf '  "micro": {\n'
        micro engine_call "$tmp/sim.txt" BenchmarkEngineCall
        printf ',\n'
        micro proc_park_wake "$tmp/sim.txt" BenchmarkProcParkWake
        printf ',\n'
        micro timer_arm_stop "$tmp/sim.txt" BenchmarkTimerArmStop
        printf ',\n'
        micro transfer_chunk "$tmp/fabric.txt" BenchmarkTransferChunk
        printf '\n  }\n}\n'
    } >"$out"

    echo "wrote $out ($(metric "$tmp/macro.txt" BenchmarkSuiteEventsPerSec events/s) events/s on the quick suite)" >&2
    exit 0
fi

out=${out:-BENCH_parallel.json}
go build -o "$tmp/paperrepro" ./cmd/paperrepro

echo "== serial run (-j 1) ==" >&2
"$tmp/paperrepro" $mode -j 1 -o "$tmp/doc_serial.md" -benchjson "$tmp/serial.json" 2>/dev/null

echo "== parallel run (-j $jobs) ==" >&2
"$tmp/paperrepro" $mode -j "$jobs" -o "$tmp/doc_parallel.md" -benchjson "$tmp/parallel.json" 2>/dev/null

cmp "$tmp/doc_serial.md" "$tmp/doc_parallel.md" || {
    echo "FAIL: suite output differs between -j 1 and -j $jobs" >&2
    exit 1
}

echo "== trace overhead (observability demo: off / sampled 1-in-16 / full) ==" >&2
go test -run '^$' -bench 'BenchmarkTraceOverhead$' -benchtime 10x \
    ./internal/experiments/ >"$tmp/traceov.txt"

# bmetric BENCH UNIT: the value reported with UNIT on BENCH's output line
# (go test suffixes sub-benchmark names with -GOMAXPROCS).
bmetric() {
    awk -v name="$1" -v unit="$2" \
        '$1 ~ "^"name {for (i = 2; i < NF; i++) if ($(i+1) == unit) {print $i; exit}}' "$tmp/traceov.txt"
}
ov_off=$(bmetric BenchmarkTraceOverhead/off events/s)
ov_sampled=$(bmetric BenchmarkTraceOverhead/sampled16 events/s)
ov_full=$(bmetric BenchmarkTraceOverhead/full events/s)
ov_pct=$(awk "BEGIN { printf \"%.1f\", (1 - $ov_full / $ov_off) * 100 }")

# Pull one scalar field out of a per-run JSON (flat top-level keys).
field() {
    sed -n "s/^  \"$2\": \([0-9.eE+-]*\),*$/\1/p" "$1" | head -1
}
serial_wall=$(field "$tmp/serial.json" wall_seconds)
parallel_wall=$(field "$tmp/parallel.json" wall_seconds)
gomaxprocs=$(field "$tmp/serial.json" gomaxprocs)

# A speedup is only a parallelism measurement when the host can actually
# run workers in parallel; otherwise report null and say why.
if [ "$gomaxprocs" -le 1 ] 2>/dev/null; then
    speedup=null
    speedup_note="GOMAXPROCS=1: workers cannot run in parallel, wall-clock ratio would be scheduling noise"
else
    speedup=$(awk "BEGIN { printf \"%.3f\", $serial_wall / $parallel_wall }")
    speedup_note=""
fi

{
    printf '{\n'
    printf '  "host_cpus": %s,\n' "$host_cpus"
    printf '  "gomaxprocs": %s,\n' "${gomaxprocs:-0}"
    printf '  "mode": "%s",\n' "$([ -n "$mode" ] && echo quick || echo full)"
    printf '  "byte_identical": true,\n'
    printf '  "speedup": %s,\n' "$speedup"
    printf '  "speedup_note": "%s",\n' "$speedup_note"
    printf '  "trace_overhead": {\n'
    printf '    "bench": "BenchmarkTraceOverhead",\n'
    printf '    "workload": "observability demo (8 ranks, 4 nodes, IBA)",\n'
    printf '    "untraced_events_per_sec": %s,\n' "$ov_off"
    printf '    "sampled16_events_per_sec": %s,\n' "$ov_sampled"
    printf '    "full_events_per_sec": %s,\n' "$ov_full"
    printf '    "full_overhead_pct": %s\n' "$ov_pct"
    printf '  },\n'
    printf '  "serial": '
    cat "$tmp/serial.json"
    printf ',\n  "parallel": '
    cat "$tmp/parallel.json"
    printf '}\n'
} >"$out"

echo "wrote $out (serial ${serial_wall}s, parallel ${parallel_wall}s at -j $jobs, speedup ${speedup}x)" >&2
