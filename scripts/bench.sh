#!/bin/sh
# Suite parallelism benchmark: run the quick figure suite serially (-j 1)
# and parallel (-j N), verify the outputs are byte-identical, and emit
# BENCH_parallel.json recording both runs' wall-clock and simulation
# event throughput plus the speedup — the perf trajectory's first data
# point for the experiment runner.
#
# Usage: bench.sh [-j N] [-o BENCH_parallel.json] [-quick|-full]
#
#   -j N     parallel worker count (default: host core count)
#   -o FILE  output path (default BENCH_parallel.json in the repo root)
#   -full    benchmark the full class B suite instead of quick mode
#            (minutes per run; what the nightly job records)
set -eu
cd "$(dirname "$0")/.."

jobs=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 4)
out=BENCH_parallel.json
mode="-quick"
while [ $# -gt 0 ]; do
    case "$1" in
    -j)
        shift
        jobs="$1"
        ;;
    -o)
        shift
        out="$1"
        ;;
    -quick) mode="-quick" ;;
    -full) mode="" ;;
    *)
        echo "usage: bench.sh [-j N] [-o FILE] [-quick|-full]" >&2
        exit 2
        ;;
    esac
    shift
done

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/paperrepro" ./cmd/paperrepro

echo "== serial run (-j 1) ==" >&2
"$tmp/paperrepro" $mode -j 1 -o "$tmp/doc_serial.md" -benchjson "$tmp/serial.json" 2>/dev/null

echo "== parallel run (-j $jobs) ==" >&2
"$tmp/paperrepro" $mode -j "$jobs" -o "$tmp/doc_parallel.md" -benchjson "$tmp/parallel.json" 2>/dev/null

cmp "$tmp/doc_serial.md" "$tmp/doc_parallel.md" || {
    echo "FAIL: suite output differs between -j 1 and -j $jobs" >&2
    exit 1
}

# Pull one scalar field out of a per-run JSON (flat top-level keys).
field() {
    sed -n "s/^  \"$2\": \([0-9.eE+-]*\),*$/\1/p" "$1" | head -1
}
serial_wall=$(field "$tmp/serial.json" wall_seconds)
parallel_wall=$(field "$tmp/parallel.json" wall_seconds)
speedup=$(awk "BEGIN { printf \"%.3f\", $serial_wall / $parallel_wall }")

{
    printf '{\n'
    printf '  "host_cpus": %s,\n' "$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)"
    printf '  "mode": "%s",\n' "$([ -n "$mode" ] && echo quick || echo full)"
    printf '  "byte_identical": true,\n'
    printf '  "speedup": %s,\n' "$speedup"
    printf '  "serial": '
    cat "$tmp/serial.json"
    printf ',\n  "parallel": '
    cat "$tmp/parallel.json"
    printf '}\n'
} >"$out"

echo "wrote $out (serial ${serial_wall}s, parallel ${parallel_wall}s at -j $jobs, speedup ${speedup}x)" >&2
