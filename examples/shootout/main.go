// Shootout: the cluster-procurement question the paper's introduction
// poses — which interconnect should an 8-node cluster buy? — answered by
// running the same micro-benchmarks and a representative application mix on
// all three fabrics.
//
//	go run ./examples/shootout
package main

import (
	"fmt"

	"mpinet"
	"mpinet/internal/units"
)

func main() {
	sizes := []int64{4, 256, 4 * units.KB, 64 * units.KB, units.MB}

	fmt.Println("== Latency (us, one-way) ==")
	fmt.Printf("%-10s", "size")
	for _, p := range mpinet.Platforms() {
		fmt.Printf("%10s", p.Name)
	}
	fmt.Println()
	curves := map[string]mpinet.Curve{}
	for _, p := range mpinet.Platforms() {
		curves[p.Name] = mpinet.Latency(p, sizes)
	}
	for i, s := range sizes {
		fmt.Printf("%-10s", units.SizeString(s))
		for _, p := range mpinet.Platforms() {
			fmt.Printf("%10.2f", curves[p.Name].Y[i])
		}
		fmt.Println()
	}

	fmt.Println("\n== Streaming bandwidth (MB/s, window 16) ==")
	for _, p := range mpinet.Platforms() {
		bw := mpinet.Bandwidth(p, []int64{units.MB}, 16)
		fmt.Printf("%-6s %8.0f\n", p.Name, bw.Y[0])
	}

	fmt.Println("\n== Application mix (class B, 8 nodes; seconds) ==")
	appNames := []string{"IS", "CG", "LU", "S3D-50"}
	fmt.Printf("%-10s", "app")
	for _, p := range mpinet.Platforms() {
		fmt.Printf("%10s", p.Name)
	}
	fmt.Println()
	totals := map[string]float64{}
	for _, name := range appNames {
		fmt.Printf("%-10s", name)
		for _, p := range mpinet.Platforms() {
			res, err := mpinet.RunApp(name, p, mpinet.ClassB, 8)
			if err != nil {
				panic(err)
			}
			t := res.Elapsed.Seconds()
			totals[p.Name] += t
			fmt.Printf("%10.2f", t)
		}
		fmt.Println()
	}
	fmt.Printf("%-10s", "TOTAL")
	best, bestT := "", 0.0
	for _, p := range mpinet.Platforms() {
		fmt.Printf("%10.2f", totals[p.Name])
		if best == "" || totals[p.Name] < bestT {
			best, bestT = p.Name, totals[p.Name]
		}
	}
	fmt.Printf("\n\nverdict: %s finishes the mix fastest — the paper's conclusion for\n", best)
	fmt.Println("bandwidth-heavy workloads on an 8-node cluster.")
}
