// LogP: characterize the three fabrics with the LogGP model (the lens the
// paper's related work uses), then predict a simple pattern from the
// parameters and check the prediction against the simulator — the model
// validating the model.
//
//	go run ./examples/logp
package main

import (
	"fmt"

	"mpinet"
	"mpinet/internal/units"
)

func main() {
	fmt.Println("LogGP characterization (L = wire latency, os/or = host overheads,")
	fmt.Println("G = gap per byte):")
	fmt.Println()
	params := map[string]mpinet.LogPParams{}
	for _, p := range mpinet.Platforms() {
		lp := mpinet.LogP(p)
		params[p.Name] = lp
		fmt.Println(" ", lp)
	}

	fmt.Println("\nPrediction check: a 64KB one-way transfer should take about")
	fmt.Println("L + os + or + (n-1)*G. Simulated vs predicted:")
	size := int64(64 * units.KB)
	for _, p := range mpinet.Platforms() {
		lp := params[p.Name]
		predicted := lp.L + lp.Os + lp.Or + float64(size-1)*lp.G/1024
		measured := mpinet.Latency(p, []int64{size}).Y[0]
		fmt.Printf("  %-5s predicted %8.1f us   simulated %8.1f us   (%+.0f%%)\n",
			p.Name, predicted, measured, (measured-predicted)/predicted*100)
	}
	fmt.Println("\nThe residual is the rendezvous handshake and per-chunk pipelining the")
	fmt.Println("four-parameter model cannot express — the paper's point that simple")
	fmt.Println("models miss what extended micro-benchmarks reveal.")
}
