// Scaleout: the question the paper leaves open — how do these results
// extend beyond one switch? — explored with the parameterized topology API:
// an InfiniBand cluster built from 24-port elements (16 hosts + 8 up-links
// per leaf, 2:1 oversubscribed) running the NAS kernels at 16-64 processes,
// under both deterministic and adaptive up-link routing.
//
//	go run ./examples/scaleout
package main

import (
	"fmt"

	"mpinet"
)

func main() {
	fmt.Println("== InfiniBand fat-tree scale-out (class B) ==")
	fmt.Println("16 hosts/leaf, 8 up-links, 2:1 oversubscription")
	fmt.Println()
	fmt.Printf("%-8s", "app")
	procs := []int{16, 32, 64}
	for _, p := range procs {
		fmt.Printf("%12s", fmt.Sprintf("%d procs", p))
	}
	fmt.Printf("%14s\n", "64p efficiency")

	// The same 24-port 2:1 element the paper's Topspin switch suggests,
	// spelled with the parameterized option instead of the auto-sizing
	// legacy one; worlds past 384 hosts would use mpinet.Clos(3, 24, 2).
	fatTree := mpinet.InfiniBand().With(mpinet.FatTree(24, 2))

	for _, name := range []string{"IS", "CG", "MG", "LU", "FT"} {
		fmt.Printf("%-8s", name)
		var t16, t64 float64
		for _, p := range procs {
			res, err := mpinet.RunApp(name, fatTree, mpinet.ClassB, p)
			if err != nil {
				panic(err)
			}
			t := res.Elapsed.Seconds()
			if p == 16 {
				t16 = t
			}
			if p == 64 {
				t64 = t
			}
			fmt.Printf("%12.2f", t)
		}
		// Efficiency relative to the 16-process run.
		eff := t16 / t64 / 4 * 100
		fmt.Printf("%13.1f%%\n", eff)
	}

	// Adaptive dispersive routing spreads each leaf's up-link traffic by
	// live queue depth instead of a deterministic source hash — the Quadrics
	// paper-era feature, available on every fabric here.
	adaptive := mpinet.InfiniBand().With(mpinet.FatTree(24, 2), mpinet.WithRouting(mpinet.Adaptive))
	res, err := mpinet.RunApp("FT", adaptive, mpinet.ClassB, 64)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nFT 64p with adaptive up-link routing: %.2f s\n", res.Elapsed.Seconds())

	fmt.Println("\nAt class B the per-rank compute still dominates, so all kernels keep")
	fmt.Println("scaling: the 2:1 oversubscription only shows when many leaf-mates")
	fmt.Println("stream cross-leaf at once (see the fat-tree contention tests).")
}
