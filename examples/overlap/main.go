// Overlap: demonstrates communication/computation overlap — the property
// behind Figure 6 and the SP/BT results of the paper. A rank posts
// non-blocking operations, computes, then waits; on a NIC that progresses
// the rendezvous itself (Quadrics Elan) the transfer completes during the
// computation, while host-driven rendezvous (InfiniBand, Myrinet) stalls
// until the host re-enters the MPI library.
//
//	go run ./examples/overlap
package main

import (
	"fmt"

	"mpinet"
	"mpinet/internal/units"
)

func main() {
	const size = 64 * units.KB // rendezvous territory on every network
	computes := []mpinet.Time{
		0,
		50 * units.Microsecond,
		200 * units.Microsecond,
		800 * units.Microsecond,
	}

	fmt.Printf("exchange of %s with inserted computation (times are per-iteration, us)\n\n",
		units.SizeString(size))
	fmt.Printf("%-12s", "compute")
	for _, p := range mpinet.Platforms() {
		fmt.Printf("%10s", p.Name)
	}
	fmt.Printf("%12s\n", "ideal")

	for _, c := range computes {
		fmt.Printf("%-12s", c.String())
		for _, p := range mpinet.Platforms() {
			fmt.Printf("%10.1f", measure(p, size, c).Micros())
		}
		fmt.Printf("%12.1f\n", c.Micros())
	}

	fmt.Println("\nA fully-overlapping implementation tracks the 'ideal' column once the")
	fmt.Println("computation exceeds the transfer time. Quadrics does: its NIC runs the")
	fmt.Println("rendezvous handshake while the host computes. InfiniBand and Myrinet")
	fmt.Println("stall the handshake until the Wait, so their columns grow by transfer")
	fmt.Println("time plus computation — nothing overlaps.")
}

func measure(p mpinet.Platform, size int64, compute mpinet.Time) mpinet.Time {
	w, err := mpinet.NewWorld(mpinet.WorldConfig{Net: p.New(2), Procs: 2})
	if err != nil {
		panic(err)
	}
	const iters = 10
	var per mpinet.Time
	err = w.Run(func(r *mpinet.Rank) {
		peer := 1 - r.Rank()
		sbuf := r.Malloc(size)
		rbuf := r.Malloc(size)
		step := func(c mpinet.Time) {
			rr := r.Irecv(rbuf, peer, 0)
			sr := r.Isend(sbuf, peer, 0)
			r.Compute(c)
			r.Wait(sr)
			r.Wait(rr)
		}
		step(0)
		start := r.Wtime()
		for i := 0; i < iters; i++ {
			step(compute)
		}
		if r.Rank() == 0 {
			per = (r.Wtime() - start) / iters
		}
	})
	if err != nil {
		panic(err)
	}
	return per
}
