// Wavefront: a sweep3D scaling study. Runs the latency-bound wavefront
// benchmark across process counts on the 16-node Topspin InfiniBand
// cluster, prints the speedup curve, and then shows how the wavefront
// pipeline reacts to an interconnect with higher host overhead (Quadrics)
// — the effect behind Figure 17 of the paper.
//
//	go run ./examples/wavefront
package main

import (
	"fmt"

	"mpinet"
)

func main() {
	fmt.Println("== sweep3D-50 scaling on the Topspin InfiniBand cluster ==")
	procs := []int{2, 4, 8, 16}
	var base float64
	for _, p := range procs {
		res, err := mpinet.RunApp("S3D-50", mpinet.Topspin(), mpinet.ClassB, p)
		if err != nil {
			panic(err)
		}
		t := res.Elapsed.Seconds()
		if p == 2 {
			base = t
		}
		speedup := 2 * base / t
		eff := speedup / float64(p) * 100
		fmt.Printf("  %2d procs: %7.3f s   speedup %5.2f   efficiency %5.1f%%\n",
			p, t, speedup, eff)
	}

	fmt.Println("\n== Per-network comparison, 8 nodes (class B) ==")
	for _, p := range mpinet.Platforms() {
		res, err := mpinet.RunApp("S3D-50", p, mpinet.ClassB, 8)
		if err != nil {
			panic(err)
		}
		pr := res.PerRank
		fmt.Printf("  %-5s %7.3f s   (%d small messages/rank, host overhead matters)\n",
			p.Name, res.Elapsed.Seconds(), pr.SizeHist[0])
	}

	fmt.Println("\n== SMP mode: 16 ranks on 8 nodes, block mapping ==")
	for _, p := range mpinet.Platforms() {
		res, err := mpinet.RunAppSMP("S3D-50", p, mpinet.ClassB, 16, 2)
		if err != nil {
			panic(err)
		}
		ag := res.Profile
		fmt.Printf("  %-5s %7.3f s   intra-node: %.1f%% of pt2pt calls\n",
			p.Name, res.Elapsed.Seconds(), ag.IntraNodeCallShare()*100)
	}
	fmt.Println("\nsweep3D moves only tiny boundary planes: wavefront codes reward low")
	fmt.Println("latency and low host overhead, not bandwidth.")
}
