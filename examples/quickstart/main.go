// Quickstart: wire a two-node InfiniBand cluster, run an MPI ping-pong on
// it, and read latency and bandwidth off the simulated clock.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"mpinet"
	"mpinet/internal/units"
)

func main() {
	platform := mpinet.InfiniBand()

	// A fresh two-node testbed. Each Platform.New call wires switches,
	// links, buses and NICs onto its own deterministic event engine.
	world, err := mpinet.NewWorld(mpinet.WorldConfig{Net: platform.New(2), Procs: 2})
	if err != nil {
		panic(err)
	}

	const iters = 100
	const size = 4 * 1024

	var rtt mpinet.Time
	err = world.Run(func(r *mpinet.Rank) {
		buf := r.Malloc(size)
		peer := 1 - r.Rank()
		// Warm up once (connection setup, registration caches).
		exchange(r, buf, peer)
		start := r.Wtime()
		for i := 0; i < iters; i++ {
			exchange(r, buf, peer)
		}
		if r.Rank() == 0 {
			rtt = (r.Wtime() - start) / iters
		}
	})
	if err != nil {
		panic(err)
	}

	oneWay := rtt / 2
	bw := float64(size) / oneWay.Seconds() / float64(units.MB)
	fmt.Printf("platform:          %s\n", platform.Name)
	fmt.Printf("message size:      %s\n", units.SizeString(size))
	fmt.Printf("one-way latency:   %v\n", oneWay)
	fmt.Printf("ping-pong rate:    %.1f MB/s\n", bw)
	fmt.Printf("rank 0 host time:  %v in the MPI library\n", world.HostBusy(0))
}

func exchange(r *mpinet.Rank, buf mpinet.Buf, peer int) {
	if r.Rank() == 0 {
		r.Send(buf, peer, 0)
		r.Recv(buf, peer, 1)
	} else {
		r.Recv(buf, peer, 0)
		r.Send(buf, peer, 1)
	}
}
