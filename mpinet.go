// Package mpinet is a deterministic cluster-interconnect simulator and MPI
// performance-study toolkit reproducing "Performance Comparison of MPI
// Implementations over InfiniBand, Myrinet and Quadrics" (Liu et al.,
// SC'03).
//
// It models the paper's 8-node dual-Xeon testbed wired with three
// interconnects — Mellanox InfiniHost/VAPI over PCI-X, Myrinet-2000/GM, and
// Quadrics Elan3/Tports over PCI — and runs an MPICH-style MPI library over
// each. On top sit the paper's extended micro-benchmark suite, the NAS
// Parallel Benchmark and sweep3D communication skeletons, and a harness
// regenerating every figure and table of the evaluation.
//
// # Quick start
//
// Build a testbed, run an MPI program on it, read the clock:
//
//	p := mpinet.InfiniBand()
//	w := mpinet.NewWorld(mpinet.WorldConfig{Net: p.New(2), Procs: 2})
//	err := w.Run(func(r *mpinet.Rank) {
//		buf := r.Malloc(4096)
//		if r.Rank() == 0 {
//			r.Send(buf, 1, 0)
//		} else {
//			r.Recv(buf, 0, 0)
//		}
//	})
//
// Micro-benchmarks and applications are one call each:
//
//	lat := mpinet.Latency(mpinet.Quadrics(), []int64{4, 64, 1024})
//	res, err := mpinet.RunApp("LU", mpinet.Myrinet(), mpinet.ClassB, 8)
//
// The full paper reproduction lives in cmd/paperrepro; see DESIGN.md for
// the model inventory and EXPERIMENTS.md for paper-vs-simulated results.
package mpinet

import (
	"mpinet/internal/apps"
	"mpinet/internal/cluster"
	"mpinet/internal/memreg"
	"mpinet/internal/metrics"
	"mpinet/internal/microbench"
	"mpinet/internal/mpi"
	"mpinet/internal/sim"
	"mpinet/internal/trace"
	"mpinet/internal/units"
)

// Re-exported core types. See the internal packages for full documentation.
type (
	// Platform is a buildable interconnect testbed.
	Platform = cluster.Platform
	// World is an MPI job on a wired network.
	World = mpi.World
	// WorldConfig configures an MPI job.
	WorldConfig = mpi.Config
	// Rank is the per-process MPI handle.
	Rank = mpi.Rank
	// Request is a non-blocking operation handle.
	Request = mpi.Request
	// Status describes a completed receive.
	Status = mpi.Status
	// Buf identifies a simulated user buffer.
	Buf = memreg.Buf
	// Time is simulated time in picoseconds.
	Time = units.Time
	// Curve is one line of a figure.
	Curve = microbench.Curve
	// AppResult is an application run's outcome.
	AppResult = apps.Result
	// Profile is a rank's communication record.
	Profile = trace.Profile
	// Class selects a workload problem size.
	Class = apps.Class
	// Engine is the discrete-event core, for custom models.
	Engine = sim.Engine
	// Comm is an MPI communicator (CommWorld, Split, Dup).
	Comm = mpi.Comm
	// Timeline collects message-level events from a run.
	Timeline = trace.Timeline
	// TimelineEvent is one message-level event.
	TimelineEvent = trace.Event
	// LogPParams is a LogGP characterization of an interconnect.
	LogPParams = microbench.LogPParams
	// Metrics is the cross-layer observability registry; set it on
	// WorldConfig.Metrics (via NewMetrics) to record every layer's counters
	// and spans. See docs/MODEL.md §10.
	Metrics = metrics.Registry
	// MetricsSnapshot is a rendered view of a Metrics registry.
	MetricsSnapshot = metrics.Snapshot
)

// NewMetrics returns an empty observability registry for
// WorldConfig.Metrics.
func NewMetrics() *Metrics { return metrics.New() }

// Workload problem classes.
const (
	// ClassS is a scaled-down test size.
	ClassS = apps.ClassS
	// ClassB is the paper's problem size.
	ClassB = apps.ClassB
)

// Receive wildcards.
const (
	// AnySource matches any sender.
	AnySource = mpi.AnySource
	// AnyTag matches any tag.
	AnyTag = mpi.AnyTag
)

// InfiniBand returns the paper's InfiniBand platform (InfiniHost HCAs on
// PCI-X, InfiniScale switch, MVAPICH-style MPI).
func InfiniBand() Platform { return cluster.IBA() }

// InfiniBandPCI is InfiniBand forced onto a 64-bit/66 MHz PCI bus
// (Section 4.7).
func InfiniBandPCI() Platform { return cluster.IBAPCI() }

// Myrinet returns the paper's Myrinet platform (M3F NICs, Myrinet-2000
// switch, MPICH-GM-style MPI).
func Myrinet() Platform { return cluster.Myri() }

// Quadrics returns the paper's Quadrics platform (Elan3 NICs on PCI,
// Elite-16 switch, Tports-based MPI).
func Quadrics() Platform { return cluster.QSN() }

// Topspin returns the 16-node Topspin InfiniBand cluster of Section 4.2.
func Topspin() Platform { return cluster.Topspin() }

// InfiniBandOnDemand is InfiniBand with on-demand connection management —
// the memory-usage fix the paper's Section 3.8 points to.
func InfiniBandOnDemand() Platform { return cluster.IBAOnDemand() }

// InfiniBandMulticast is InfiniBand with the hardware-collective extension
// of Section 3.7: broadcasts ride switch multicast.
func InfiniBandMulticast() Platform { return cluster.IBAMulticast() }

// LogP extracts LogGP parameters (L, os, or, G) for an interconnect, per
// the methodology of the paper's related work.
func LogP(p Platform) LogPParams { return microbench.LogP(p) }

// Platforms returns the three OSU-testbed interconnects in the paper's
// order.
func Platforms() []Platform { return cluster.OSU() }

// NewWorld builds an MPI job; see mpi.NewWorld.
func NewWorld(cfg WorldConfig) *World { return mpi.NewWorld(cfg) }

// Latency measures one-way MPI latency (us) across message sizes
// (Figure 1).
func Latency(p Platform, sizes []int64) Curve { return microbench.Latency(p, sizes) }

// Bandwidth measures windowed streaming bandwidth in MB/s (Figure 2).
func Bandwidth(p Platform, sizes []int64, window int) Curve {
	return microbench.Bandwidth(p, sizes, window)
}

// HostOverhead measures per-message host CPU time (us) in the latency test
// (Figure 3).
func HostOverhead(p Platform, sizes []int64) Curve { return microbench.HostOverhead(p, sizes) }

// Overlap measures communication/computation overlap potential (us,
// Figure 6).
func Overlap(p Platform, sizes []int64) Curve { return microbench.Overlap(p, sizes) }

// RunApp executes one of the paper's workloads ("IS", "CG", "MG", "LU",
// "FT", "SP", "BT", "S3D-50", "S3D-150") on procs processes.
func RunApp(name string, p Platform, class Class, procs int) (AppResult, error) {
	a, err := apps.ByName(name)
	if err != nil {
		return AppResult{}, err
	}
	return a.Run(apps.RunConfig{Platform: p, Class: class, Procs: procs})
}

// RunAppSMP executes a workload with several ranks per node (block
// mapping), the paper's SMP configuration.
func RunAppSMP(name string, p Platform, class Class, procs, perNode int) (AppResult, error) {
	a, err := apps.ByName(name)
	if err != nil {
		return AppResult{}, err
	}
	return a.Run(apps.RunConfig{Platform: p, Class: class, Procs: procs, ProcsPerNode: perNode})
}

// AppNames lists the available workloads in the paper's order.
func AppNames() []string {
	var names []string
	for _, a := range apps.Registry() {
		names = append(names, a.Name)
	}
	return names
}
