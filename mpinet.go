// Package mpinet is a deterministic cluster-interconnect simulator and MPI
// performance-study toolkit reproducing "Performance Comparison of MPI
// Implementations over InfiniBand, Myrinet and Quadrics" (Liu et al.,
// SC'03).
//
// It models the paper's 8-node dual-Xeon testbed wired with three
// interconnects — Mellanox InfiniHost/VAPI over PCI-X, Myrinet-2000/GM, and
// Quadrics Elan3/Tports over PCI — and runs an MPICH-style MPI library over
// each. On top sit the paper's extended micro-benchmark suite, the NAS
// Parallel Benchmark and sweep3D communication skeletons, and a harness
// regenerating every figure and table of the evaluation.
//
// # Quick start
//
// Build a testbed, run an MPI program on it, read the clock:
//
//	p := mpinet.InfiniBand()
//	w, err := mpinet.NewWorld(mpinet.WorldConfig{Net: p.New(2), Procs: 2})
//	if err != nil {
//		log.Fatal(err)
//	}
//	err = w.Run(func(r *mpinet.Rank) {
//		buf := r.Malloc(4096)
//		if r.Rank() == 0 {
//			r.Send(buf, 1, 0)
//		} else {
//			r.Recv(buf, 0, 0)
//		}
//	})
//
// Micro-benchmarks and applications are one call each:
//
//	lat := mpinet.Latency(mpinet.Quadrics(), []int64{4, 64, 1024})
//	res, err := mpinet.RunApp("LU", mpinet.Myrinet(), mpinet.ClassB, 8)
//
// Platform variants and degraded scenarios compose through functional
// options (Platform.With / NewWorld options):
//
//	p := mpinet.InfiniBand().With(mpinet.PCIBus())          // Section 4.7 variant
//	faulty := p.With(mpinet.WithFaults(mpinet.DropPlan(42, 0.01)))
//	w, err := mpinet.NewWorld(mpinet.WorldConfig{Net: faulty.New(2), Procs: 2})
//
// A run on a faulty network either completes (slower — the NICs retransmit
// per their interconnect's reliability protocol) or returns a typed error:
// errors.Is(err, mpinet.ErrRetryExhausted) for a dead link,
// errors.Is(err, mpinet.ErrTimeout) for a starved wait. See docs/MODEL.md
// §12 for the fault model.
//
// Two or three interconnects can be bonded into one multi-rail channel with
// health monitoring and automatic inter-fabric failover (docs/MODEL.md §13):
//
//	bond := mpinet.Bond(mpinet.InfiniBand(), mpinet.Myrinet())
//	striped := bond.With(mpinet.WithRailPolicy(mpinet.Stripe))
//	killed := bond.With(mpinet.WithFaults(&mpinet.FaultPlan{
//		Seed:      42,
//		RailKills: []mpinet.RailKill{{Rail: 0, At: 5 * mpinet.Millisecond}},
//	}))
//
// A job on killed completes — in-flight traffic is re-issued on the Myrinet
// rail when InfiniBand dies — and only fails (with
// errors.Is(err, mpinet.ErrAllRailsDown)) when every rail is dead.
//
// The full paper reproduction lives in cmd/paperrepro; see DESIGN.md for
// the model inventory and EXPERIMENTS.md for paper-vs-simulated results.
package mpinet

import (
	"mpinet/internal/apps"

	"mpinet/internal/cluster"
	"mpinet/internal/fabric"
	"mpinet/internal/faults"
	"mpinet/internal/memreg"
	"mpinet/internal/metrics"
	"mpinet/internal/microbench"
	"mpinet/internal/mpi"
	"mpinet/internal/rail"
	"mpinet/internal/sim"
	"mpinet/internal/trace"
	"mpinet/internal/units"
)

// Re-exported core types. See the internal packages for full documentation.
type (
	// Platform is a buildable interconnect testbed.
	Platform = cluster.Platform
	// World is an MPI job on a wired network.
	World = mpi.World
	// WorldConfig configures an MPI job.
	WorldConfig = mpi.Config
	// Rank is the per-process MPI handle.
	Rank = mpi.Rank
	// Request is a non-blocking operation handle.
	Request = mpi.Request
	// Status describes a completed receive.
	Status = mpi.Status
	// Buf identifies a simulated user buffer.
	Buf = memreg.Buf
	// Time is simulated time in picoseconds.
	Time = units.Time
	// Curve is one line of a figure.
	Curve = microbench.Curve
	// AppResult is an application run's outcome.
	AppResult = apps.Result
	// Profile is a rank's communication record.
	Profile = trace.Profile
	// Class selects a workload problem size.
	Class = apps.Class
	// Engine is the discrete-event core, for custom models.
	Engine = sim.Engine
	// Comm is an MPI communicator (CommWorld, Split, Dup).
	Comm = mpi.Comm
	// Timeline collects message-level events from a run.
	Timeline = trace.Timeline
	// TimelineEvent is one message-level event.
	TimelineEvent = trace.Event
	// LogPParams is a LogGP characterization of an interconnect.
	LogPParams = microbench.LogPParams
	// Metrics is the cross-layer observability registry; set it on
	// WorldConfig.Metrics (via NewMetrics) to record every layer's counters
	// and spans. See docs/MODEL.md §10.
	Metrics = metrics.Registry
	// MetricsSnapshot is a rendered view of a Metrics registry.
	MetricsSnapshot = metrics.Snapshot
	// Option is a functional option for Platform.With and NewWorld.
	Option = cluster.Option
	// FaultPlan is a deterministic, seed-driven fault scenario for
	// WithFaults. See internal/faults and docs/MODEL.md §12.
	FaultPlan = faults.Plan
	// LinkFault overrides drop/corrupt rates on matching links of a
	// FaultPlan.
	LinkFault = faults.LinkRule
	// LinkFlap is a link-down window of a FaultPlan.
	LinkFlap = faults.Flap
	// NICStall is a NIC freeze window of a FaultPlan.
	NICStall = faults.Stall
	// BusBurst is a bus-contention window of a FaultPlan.
	BusBurst = faults.BusBurst
	// RailPolicy selects how a bonded channel spreads traffic over its
	// rails (Failover or Stripe).
	RailPolicy = rail.Policy
	// RailKill is a FaultPlan entry taking one rail of a bonded platform
	// permanently down at an instant.
	RailKill = faults.RailKill
	// RailDegrade is a FaultPlan entry black- or brown-outing one rail of a
	// bonded platform for a window.
	RailDegrade = faults.RailDegrade
	// SwitchKill is a FaultPlan entry taking one switching element of a
	// multi-stage fabric (a spine plane or a leaf) hard down, optionally
	// repaired later. See docs/MODEL.md §19.
	SwitchKill = faults.SwitchKill
	// LinecardDegrade is a FaultPlan entry adding drop probability to every
	// packet riding one fabric element for a window.
	LinecardDegrade = faults.LinecardDegrade
	// NodeCrash is a FaultPlan entry killing a host node: its NIC goes dark
	// and every rank on it dies (permanently, even if the link is repaired).
	NodeCrash = faults.NodeCrash
	// RankFailedError reports a dead peer rank, either as Status.Err on a
	// fault-tolerant operation or as the job-abort error otherwise.
	RankFailedError = mpi.RankFailedError
	// Routing selects a multi-stage fabric's path policy (Deterministic or
	// Adaptive) for WithRouting.
	Routing = fabric.Routing
	// ConfigError names an invalid platform option combination (bad
	// radix/oversubscription, for instance); NewWorld returns it.
	ConfigError = cluster.ConfigError
)

// Bond policies and time units for fault-plan and bond tuning fields.
const (
	// Failover sends on the best healthy rail and migrates on failure.
	Failover = rail.Failover
	// Stripe splits large messages across all healthy rails.
	Stripe = rail.Stripe

	// Deterministic is ECMP-by-destination routing: a (src, dst) pair always
	// takes the same fabric path.
	Deterministic = fabric.Deterministic
	// Adaptive is dispersive routing: each message takes its source leaf's
	// least-loaded up-link, seeded ties making replay deterministic.
	Adaptive = fabric.Adaptive

	// Microsecond is one simulated microsecond.
	Microsecond = units.Microsecond
	// Millisecond is one simulated millisecond.
	Millisecond = units.Millisecond
)

// Typed errors for World.Run and RunApp failures; match with errors.Is.
var (
	// ErrUnknownApp marks a workload name RunApp does not know.
	ErrUnknownApp = apps.ErrUnknownApp
	// ErrTruncate marks MPI_ERR_TRUNCATE: a message larger than its posted
	// receive buffer.
	ErrTruncate = mpi.ErrTruncate
	// ErrRetryExhausted marks a permanent link failure: a NIC retried per
	// its reliability protocol (RC retransmit, GM resend, Elan source
	// retry) and gave up. The error text names the failing rank and link.
	ErrRetryExhausted = faults.ErrRetryExhausted
	// ErrTimeout marks a blocking MPI operation that made no progress
	// within the watchdog interval of a faulty run.
	ErrTimeout = mpi.ErrTimeout
	// ErrAllRailsDown marks a bonded channel whose every rail is dead; it
	// also matches ErrRetryExhausted, since that is how the last rail died.
	ErrAllRailsDown = rail.ErrAllRailsDown
	// ErrPartitioned marks a structural reachability failure: every fabric
	// plane between two endpoints is dead, or the peer's node crashed.
	// Retrying cannot help; devices fail typed without burning retries.
	ErrPartitioned = faults.ErrPartitioned
	// ErrRankFailed marks an operation against a dead MPI rank; under
	// WorldConfig.FaultTolerant it arrives in Status.Err instead of aborting
	// the job. See docs/MODEL.md §19.
	ErrRankFailed = mpi.ErrRankFailed
)

// DropPlan returns a fault plan with a uniform per-packet drop probability
// on every link, under the given seed.
func DropPlan(seed uint64, drop float64) *FaultPlan { return faults.DropPlan(seed, drop) }

// Functional options. Platform-side options (PCIBus, OnDemand, Multicast,
// FatTree, EagerThreshold, WithFaults, WithSeed) take effect through
// Platform.With; world-side options (WithProcsPerNode, WithTimeline,
// WithMetrics, WithTimeout) through NewWorld. WithFaults spans both: pass
// it to Platform.With to wire the plan into the NICs (NewWorld then arms
// the watchdog automatically).

// PCIBus forces the 64-bit/66 MHz PCI bus of Section 4.7 (InfiniBand only).
func PCIBus() Option { return cluster.PCIBus() }

// OnDemand enables on-demand connection management (Section 3.8).
func OnDemand() Option { return cluster.OnDemand() }

// Multicast enables hardware-multicast collectives (Section 3.7).
func Multicast() Option { return cluster.Multicast() }

// AutoFatTree builds the legacy two-level fat tree sized from the node
// count (InfiniBand only).
//
// Deprecated: use FatTree(24, 2), the parameterized topology API.
func AutoFatTree() Option { return cluster.AutoFatTree() }

// Crossbar pins the platform to a single-crossbar fabric whose radix grows
// with the node count (the topology API's explicit default).
func Crossbar() Option { return cluster.Crossbar() }

// FatTree builds a two-level folded-Clos (leaf/spine) fabric from
// radix-port switching elements at the given oversubscription ratio;
// FatTree(24, 2) is the classic 16-host/8-uplink leaf. Works on all three
// interconnects; invalid dimension combinations surface from NewWorld as a
// descriptive error.
func FatTree(radix, oversub int) Option { return cluster.FatTree(radix, oversub) }

// Clos builds a multi-level folded-Clos fabric — levels switching levels of
// radix-port elements at the given leaf oversubscription — for worlds that
// outgrow one spine tier (thousands of ranks).
func Clos(levels, radix, oversub int) Option { return cluster.Clos(levels, radix, oversub) }

// WithRouting selects a multi-stage fabric's path policy: Deterministic
// ECMP or Adaptive dispersive routing (seeded via WithSeed).
func WithRouting(r Routing) Option { return cluster.WithRouting(r) }

// EagerThreshold overrides the eager/rendezvous switch point.
func EagerThreshold(t int64) Option { return cluster.EagerThreshold(t) }

// WithFaults runs the platform under a fault plan; see FaultPlan.
func WithFaults(plan *FaultPlan) Option { return cluster.WithFaults(plan) }

// WithSeed overrides the fault plan's seed.
func WithSeed(seed uint64) Option { return cluster.WithSeed(seed) }

// WithSwitchKills schedules fabric-element deaths (spine planes, leaves) on
// a multi-stage platform, composing with any existing fault plan. See
// docs/MODEL.md §19.
func WithSwitchKills(kills ...SwitchKill) Option { return cluster.WithSwitchKills(kills...) }

// WithLinecardDegrades schedules per-element extra drop windows on a
// multi-stage platform.
func WithLinecardDegrades(degrades ...LinecardDegrade) Option {
	return cluster.WithLinecardDegrades(degrades...)
}

// WithNodeCrashes schedules host-node deaths: dark NICs plus dead MPI ranks.
func WithNodeCrashes(crashes ...NodeCrash) Option { return cluster.WithNodeCrashes(crashes...) }

// WithDetectDelay overrides how long the fabric and MPI layers take to
// notice element and node deaths (default faults.DefaultDetectDelay).
func WithDetectDelay(d Time) Option { return cluster.WithDetectDelay(d) }

// WithFaultTolerant opts the world into ULFM-style rank-death notification:
// operations against dead ranks complete with Status.Err instead of
// aborting the job.
func WithFaultTolerant() Option { return cluster.WithFaultTolerant() }

// WithRailPolicy selects a bonded platform's traffic policy (Failover or
// Stripe); it has no effect on solo platforms.
func WithRailPolicy(p RailPolicy) Option { return cluster.WithRailPolicy(p) }

// WithHeartbeat overrides a bonded platform's health-probe interval.
func WithHeartbeat(d Time) Option { return cluster.WithHeartbeat(d) }

// WithProcsPerNode sets ranks per node (the paper's SMP configuration).
func WithProcsPerNode(n int) Option { return cluster.WithProcsPerNode(n) }

// WithTimeline collects message-level events into tl.
func WithTimeline(tl *Timeline) Option { return cluster.WithTimeline(tl) }

// WithMetrics wires every layer into the registry m.
func WithMetrics(m *Metrics) Option { return cluster.WithMetrics(m) }

// WithTimeout sets the per-wait MPI watchdog (negative disables it).
func WithTimeout(d Time) Option { return cluster.WithTimeout(d) }

// WithShards partitions the world's event queue into n conservatively
// synchronized shards (docs/MODEL.md §17). Purely an execution knob: every
// figure, metric snapshot and trace is byte-identical at any shard count.
func WithShards(n int) Option { return cluster.WithShards(n) }

// NewMetrics returns an empty observability registry for
// WorldConfig.Metrics.
func NewMetrics() *Metrics { return metrics.New() }

// Workload problem classes.
const (
	// ClassS is a scaled-down test size.
	ClassS = apps.ClassS
	// ClassB is the paper's problem size.
	ClassB = apps.ClassB
)

// Receive wildcards.
const (
	// AnySource matches any sender.
	AnySource = mpi.AnySource
	// AnyTag matches any tag.
	AnyTag = mpi.AnyTag
)

// InfiniBand returns the paper's InfiniBand platform (InfiniHost HCAs on
// PCI-X, InfiniScale switch, MVAPICH-style MPI).
func InfiniBand() Platform { return cluster.IBA() }

// InfiniBandPCI is InfiniBand forced onto a 64-bit/66 MHz PCI bus
// (Section 4.7).
//
// Deprecated: use InfiniBand().With(PCIBus()).
func InfiniBandPCI() Platform { return cluster.IBAPCI() }

// Myrinet returns the paper's Myrinet platform (M3F NICs, Myrinet-2000
// switch, MPICH-GM-style MPI).
func Myrinet() Platform { return cluster.Myri() }

// Quadrics returns the paper's Quadrics platform (Elan3 NICs on PCI,
// Elite-16 switch, Tports-based MPI).
func Quadrics() Platform { return cluster.QSN() }

// Topspin returns the 16-node Topspin InfiniBand cluster of Section 4.2.
func Topspin() Platform { return cluster.Topspin() }

// Bond attaches 2-3 interconnects beneath one multi-rail MPI channel with
// health monitoring and automatic failover; the first member is the
// preferred rail. See docs/MODEL.md §13.
func Bond(primary Platform, others ...Platform) Platform {
	return cluster.Bond(primary, others...)
}

// InfiniBandOnDemand is InfiniBand with on-demand connection management —
// the memory-usage fix the paper's Section 3.8 points to.
//
// Deprecated: use InfiniBand().With(OnDemand()).
func InfiniBandOnDemand() Platform { return cluster.IBAOnDemand() }

// InfiniBandMulticast is InfiniBand with the hardware-collective extension
// of Section 3.7: broadcasts ride switch multicast.
//
// Deprecated: use InfiniBand().With(Multicast()).
func InfiniBandMulticast() Platform { return cluster.IBAMulticast() }

// LogP extracts LogGP parameters (L, os, or, G) for an interconnect, per
// the methodology of the paper's related work.
func LogP(p Platform) LogPParams { return microbench.LogP(p) }

// Platforms returns the three OSU-testbed interconnects in the paper's
// order.
func Platforms() []Platform { return cluster.OSU() }

// NewWorld builds an MPI job from the configuration plus any world-side
// options, validating it first: a nil Net, Procs < 1, or more procs than
// the network can place come back as descriptive errors instead of later
// panics. See mpi.NewWorld.
func NewWorld(cfg WorldConfig, opts ...Option) (*World, error) {
	cluster.ApplyWorld(&cfg, opts...)
	return mpi.NewWorld(cfg)
}

// Latency measures one-way MPI latency (us) across message sizes
// (Figure 1).
func Latency(p Platform, sizes []int64) Curve { return microbench.Latency(p, sizes) }

// Bandwidth measures windowed streaming bandwidth in MB/s (Figure 2).
func Bandwidth(p Platform, sizes []int64, window int) Curve {
	return microbench.Bandwidth(p, sizes, window)
}

// HostOverhead measures per-message host CPU time (us) in the latency test
// (Figure 3).
func HostOverhead(p Platform, sizes []int64) Curve { return microbench.HostOverhead(p, sizes) }

// Overlap measures communication/computation overlap potential (us,
// Figure 6).
func Overlap(p Platform, sizes []int64) Curve { return microbench.Overlap(p, sizes) }

// RunApp executes one of the paper's workloads ("IS", "CG", "MG", "LU",
// "FT", "SP", "BT", "S3D-50", "S3D-150") on procs processes.
func RunApp(name string, p Platform, class Class, procs int) (AppResult, error) {
	a, err := apps.ByName(name)
	if err != nil {
		return AppResult{}, err
	}
	return a.Run(apps.RunConfig{Platform: p, Class: class, Procs: procs})
}

// RunAppSMP executes a workload with several ranks per node (block
// mapping), the paper's SMP configuration.
func RunAppSMP(name string, p Platform, class Class, procs, perNode int) (AppResult, error) {
	a, err := apps.ByName(name)
	if err != nil {
		return AppResult{}, err
	}
	return a.Run(apps.RunConfig{Platform: p, Class: class, Procs: procs, ProcsPerNode: perNode})
}

// AppNames lists the available workloads in the paper's order.
func AppNames() []string {
	var names []string
	for _, a := range apps.Registry() {
		names = append(names, a.Name)
	}
	return names
}
