package mpinet

// One benchmark per figure and table of the paper's evaluation: each
// regenerates its experiment on the simulated testbeds and reports the
// headline value(s) as custom metrics. `go test -bench=. -benchmem` is the
// full reproduction sweep; cmd/paperrepro renders the same data as a
// document.

import (
	"testing"

	"mpinet/internal/cluster"
	"mpinet/internal/experiments"
	"mpinet/internal/microbench"
	"mpinet/internal/units"
)

// sharedRunner caches application runs across benchmarks (Table 2 feeds the
// speedup figures, for example), exactly as cmd/paperrepro does.
var sharedRunner = experiments.NewRunner(false, nil)

func BenchmarkFig01Latency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := sharedRunner.Fig1()
		b.ReportMetric(f.Curves[0].Y[0], "IBA-4B-us")
		b.ReportMetric(f.Curves[2].Y[0], "QSN-4B-us")
	}
}

func BenchmarkFig02Bandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := sharedRunner.Fig2()
		last := len(f.Curves[1].Y) - 1
		b.ReportMetric(f.Curves[1].Y[last], "IBA-peak-MBs")
	}
}

func BenchmarkFig03Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := sharedRunner.Fig3()
		b.ReportMetric(f.Curves[0].Y[0], "IBA-us")
	}
}

func BenchmarkFig04BiLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := sharedRunner.Fig4()
		b.ReportMetric(f.Curves[1].Y[0], "Myri-4B-us")
	}
}

func BenchmarkFig05BiBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := sharedRunner.Fig5()
		last := len(f.Curves[0].Y) - 1
		b.ReportMetric(f.Curves[0].Y[last], "IBA-1M-MBs")
	}
}

func BenchmarkFig06Overlap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := sharedRunner.Fig6()
		last := len(f.Curves[2].Y) - 1
		b.ReportMetric(f.Curves[2].Y[last], "QSN-64K-us")
	}
}

func BenchmarkFig07ReuseLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := sharedRunner.Fig7()
		b.ReportMetric(f.Curves[0].Y[len(f.Curves[0].Y)-1], "IBA-0pct-16K-us")
	}
}

func BenchmarkFig08ReuseBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := sharedRunner.Fig8()
		b.ReportMetric(f.Curves[0].Y[len(f.Curves[0].Y)-1], "IBA-0pct-64K-MBs")
	}
}

func BenchmarkFig09IntraLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := sharedRunner.Fig9()
		b.ReportMetric(f.Curves[1].Y[0], "Myri-4B-us")
	}
}

func BenchmarkFig10IntraBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := sharedRunner.Fig10()
		last := len(f.Curves[0].Y) - 1
		b.ReportMetric(f.Curves[0].Y[last], "IBA-1M-MBs")
	}
}

func BenchmarkFig11Alltoall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := sharedRunner.Fig11()
		b.ReportMetric(f.Curves[2].Y[0], "QSN-4B-us")
	}
}

func BenchmarkFig12Allreduce(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := sharedRunner.Fig12()
		b.ReportMetric(f.Curves[2].Y[0], "QSN-4B-us")
	}
}

func BenchmarkFig13Memory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := sharedRunner.Fig13()
		last := len(f.Curves[0].Y) - 1
		b.ReportMetric(f.Curves[0].Y[last], "IBA-8n-MB")
	}
}

func BenchmarkFig14to17Apps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := sharedRunner.Figs14to17()
		b.ReportMetric(float64(len(t.Rows)), "apps")
	}
}

func BenchmarkTab1MsgSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := sharedRunner.Tab1()
		b.ReportMetric(float64(len(t.Rows)), "apps")
	}
}

func BenchmarkTab2Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := sharedRunner.Tab2()
		b.ReportMetric(float64(len(t.Rows)), "apps")
	}
}

func BenchmarkTab3NonBlocking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sharedRunner.Tab3()
	}
}

func BenchmarkTab4BufferReuse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sharedRunner.Tab4()
	}
}

func BenchmarkTab5Collectives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sharedRunner.Tab5()
	}
}

func BenchmarkTab6IntraNode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sharedRunner.Tab6()
	}
}

func BenchmarkFig18to23Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs := sharedRunner.Figs18to23()
		// CG's superlinear 8-node speedup is the headline.
		cg := figs[1]
		b.ReportMetric(cg.Curves[0].Y[len(cg.Curves[0].Y)-1], "CG-IBA-8n-speedup")
	}
}

func BenchmarkFig24Topspin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sharedRunner.Fig24()
	}
}

func BenchmarkFig25SMP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sharedRunner.Fig25()
	}
}

func BenchmarkFig26PCILatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := sharedRunner.Fig26()
		b.ReportMetric(f.Curves[1].Y[0]-f.Curves[0].Y[0], "PCI-penalty-us")
	}
}

func BenchmarkFig27PCIBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := sharedRunner.Fig27()
		b.ReportMetric(f.Curves[1].Y[len(f.Curves[1].Y)-1], "PCI-peak-MBs")
	}
}

func BenchmarkFig28PCIApps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sharedRunner.Fig28()
	}
}

// Engine-level micro-benchmarks: raw cost of the simulation substrate
// itself (events, transfers, MPI messages).

func BenchmarkEngineEventDispatch(b *testing.B) {
	eng := clusterEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Schedule(0, func() {})
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func clusterEngine() *Engine {
	return cluster.IBA().New(2).Engine()
}

func BenchmarkSimPingPong4B(b *testing.B) {
	benchPingPong(b, 4)
}

func BenchmarkSimPingPong64K(b *testing.B) {
	benchPingPong(b, 64*units.KB)
}

func benchPingPong(b *testing.B, size int64) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := microbench.Latency(cluster.Myri(), []int64{size})
		_ = c
	}
}
