package mpinet

import (
	"errors"
	"testing"
)

// The package-doc bonding example must work through the facade alone: a
// bonded world survives its primary dying mid-run, and only an all-rails
// kill surfaces ErrAllRailsDown.
func TestFacadeBondFailsOverAndFailsTyped(t *testing.T) {
	bond := Bond(InfiniBand(), Myrinet())
	if bond.Name != "IBA+Myri" {
		t.Fatalf("bond name = %q, want IBA+Myri", bond.Name)
	}
	if got := bond.With(WithRailPolicy(Stripe)).Name; got != "IBA+Myri-stripe" {
		t.Fatalf("stripe bond name = %q", got)
	}

	// Long enough (~16 ms healthy) that the 2 ms rail kill lands mid-run.
	ring := func(r *Rank) {
		buf := r.Malloc(32 * 1024)
		next := (r.Rank() + 1) % r.Size()
		prev := (r.Rank() - 1 + r.Size()) % r.Size()
		for i := 0; i < 200; i++ {
			r.Sendrecv(buf, next, i, buf, prev, i)
		}
	}
	run := func(p Platform) error {
		w, err := NewWorld(WorldConfig{Net: p.New(4), Procs: 4})
		if err != nil {
			t.Fatal(err)
		}
		return w.Run(ring)
	}

	killPrimary := bond.With(WithFaults(&FaultPlan{Seed: 42,
		RailKills: []RailKill{{Rail: 0, At: 2 * Millisecond}}}))
	if err := run(killPrimary); err != nil {
		t.Fatalf("bonded run did not survive a primary-rail kill: %v", err)
	}

	killAll := bond.With(WithFaults(&FaultPlan{Seed: 42, RailKills: []RailKill{
		{Rail: 0, At: 2 * Millisecond}, {Rail: 1, At: 2 * Millisecond}}}))
	err := run(killAll)
	if !errors.Is(err, ErrAllRailsDown) {
		t.Fatalf("all-rails kill: err %v is not ErrAllRailsDown", err)
	}
	if !errors.Is(err, ErrRetryExhausted) {
		t.Fatalf("all-rails kill: err %v is not also ErrRetryExhausted", err)
	}
}
