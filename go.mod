module mpinet

go 1.22
