package mpinet

import (
	"errors"
	"strings"
	"testing"

	"mpinet/internal/units"
)

func TestFacadeOptionsCompose(t *testing.T) {
	p := InfiniBand().With(PCIBus())
	if p.Name != "IBA-PCI" {
		t.Fatalf("With(PCIBus()) name = %q, want IBA-PCI", p.Name)
	}
	// Deprecated wrappers must be the same platform as their option form.
	if got := InfiniBandPCI().Name; got != p.Name {
		t.Fatalf("InfiniBandPCI() = %q, option form = %q", got, p.Name)
	}
	if got := InfiniBandOnDemand().Name; got != InfiniBand().With(OnDemand()).Name {
		t.Fatalf("InfiniBandOnDemand() = %q diverges from option form", got)
	}
	if got := InfiniBandMulticast().Name; got != InfiniBand().With(Multicast()).Name {
		t.Fatalf("InfiniBandMulticast() = %q diverges from option form", got)
	}
	// Derivation must not mutate the base.
	if InfiniBand().Name != "IBA" {
		t.Fatal("With mutated the predefined platform")
	}
}

func TestFacadeNewWorldValidates(t *testing.T) {
	if _, err := NewWorld(WorldConfig{Procs: 2}); err == nil {
		t.Fatal("nil Net accepted")
	}
	if _, err := NewWorld(WorldConfig{Net: InfiniBand().New(2), Procs: 9}); err == nil {
		t.Fatal("overcommitted world accepted")
	}
}

func TestFacadeFaultyRunFailsTyped(t *testing.T) {
	faulty := Myrinet().With(WithFaults(DropPlan(3, 1.0)))
	w, err := NewWorld(WorldConfig{Net: faulty.New(2), Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(r *Rank) {
		buf := r.Malloc(256)
		if r.Rank() == 0 {
			r.Send(buf, 1, 0)
		} else {
			r.Recv(buf, 0, 0)
		}
	})
	if !errors.Is(err, ErrRetryExhausted) {
		t.Fatalf("total loss: err %v is not ErrRetryExhausted", err)
	}
	if !strings.Contains(err.Error(), "node0->node1") {
		t.Fatalf("err %q does not attribute the link", err)
	}
}

func TestFacadeFaultyRunCompletesSlower(t *testing.T) {
	elapsed := func(p Platform) Time {
		w, err := NewWorld(WorldConfig{Net: p.New(2), Procs: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Run(func(r *Rank) {
			buf := r.Malloc(1024)
			for i := 0; i < 64; i++ {
				if r.Rank() == 0 {
					r.Send(buf, 1, 0)
					r.Recv(buf, 1, 1)
				} else {
					r.Recv(buf, 0, 0)
					r.Send(buf, 0, 1)
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
		return w.Elapsed()
	}
	healthy := elapsed(Quadrics())
	faulty := elapsed(Quadrics().With(WithFaults(DropPlan(11, 0.05))))
	if faulty <= healthy {
		t.Fatalf("faulty run (%v) not slower than healthy (%v)", faulty, healthy)
	}
}

func TestFacadeTimeoutTyped(t *testing.T) {
	w, err := NewWorld(WorldConfig{Net: InfiniBand().New(2), Procs: 2},
		WithTimeout(units.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(r *Rank) {
		if r.Rank() == 1 {
			r.Recv(r.Malloc(64), 0, 0) // never satisfied
		}
	})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("starved recv: err %v is not ErrTimeout", err)
	}
}

func TestFacadeUnknownAppTyped(t *testing.T) {
	_, err := RunApp("nope", Myrinet(), ClassS, 8)
	if !errors.Is(err, ErrUnknownApp) {
		t.Fatalf("err %v is not ErrUnknownApp", err)
	}
}
