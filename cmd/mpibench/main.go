// Command mpibench runs the paper's MPI micro-benchmark suite (Section 3)
// on the simulated testbeds and prints each figure's data.
//
// Usage:
//
//	mpibench [-fig N] [-quick] [-j N] [-shards N] [-v]
//	mpibench [-metrics FILE] [-tracefile FILE] [-blame FILE] [-tracemsgs N] [-obsnet IBA|Myri|QSN]
//
// Without -fig it runs the whole suite: Figures 1-13 plus the PCI
// comparison Figures 26-27. -quick thins the size sweeps for a fast smoke
// run. Figures are independent simulations and fan out over -j worker
// goroutines (default: one per core); output order and bytes are identical
// for every -j value. -shards N partitions each simulated world's event
// queue into N conservatively synchronized shards (docs/MODEL.md §17);
// like -j it changes only how the simulation executes, never its output.
//
// The second form runs the instrumented observability demo workload:
// -metrics writes the cross-layer metrics snapshot, -tracefile a Chrome
// trace_event JSON, -blame the per-message critical-path blame report
// (machine-readable JSON), -obsnet picks the interconnect (default IBA).
// -tracemsgs N turns on per-message span tracing at 1-in-N sampling
// (-blame implies N=1 when unset), which also adds message-flow arrows to
// the Chrome trace. Any output flag can be - for stdout.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"runtime"

	"mpinet/internal/cluster"
	"mpinet/internal/experiments"
	"mpinet/internal/microbench"
	"mpinet/internal/profiling"
	"mpinet/internal/report"
)

func main() {
	fig := flag.Int("fig", 0, "run a single figure (1-13, 26, 27); 0 = all")
	plot := flag.Bool("plot", false, "with -fig: render an ASCII chart instead of the data table")
	csv := flag.Bool("csv", false, "with -fig: emit CSV instead of the data table")
	quick := flag.Bool("quick", false, "thin sweeps for a fast smoke run")
	jobs := flag.Int("j", runtime.NumCPU(), "figures to run concurrently (output is identical for any value)")
	shards := flag.Int("shards", 1, "event-queue shards per simulated world (output is identical for any value)")
	logp := flag.Bool("logp", false, "extract LogGP parameters per interconnect and exit")
	verbose := flag.Bool("v", false, "print progress to stderr")
	metricsOut := flag.String("metrics", "", "run the observability demo, write its metrics snapshot here (- = stdout), and exit")
	traceOut := flag.String("tracefile", "", "run the observability demo, write a Chrome trace_event JSON here (- = stdout), and exit")
	obsNet := flag.String("obsnet", "IBA", "interconnect for the observability demo (IBA, Myri or QSN)")
	traceMsgs := flag.Int("tracemsgs", 0, "per-message tracing for the observability demo: trace 1 in N messages (0 = off, 1 = all); adds flow arrows to -tracefile")
	blameOut := flag.String("blame", "", "run the traced observability demo, write the critical-path blame report JSON here (- = stdout), and exit")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write an allocation profile at exit to this file (go tool pprof)")
	flag.Parse()

	os.Exit(profiling.Run(*cpuProfile, *memProfile, "mpibench", func() int {
		if *metricsOut != "" || *traceOut != "" || *blameOut != "" {
			if err := runObserved(*obsNet, *metricsOut, *traceOut, *blameOut, *traceMsgs, *shards); err != nil {
				fmt.Fprintln(os.Stderr, "mpibench:", err)
				return 1
			}
			return 0
		}

		if *logp {
			fmt.Println("LogGP parameters (Culler et al. model, extracted per the")
			fmt.Println("paper's related-work methodology):")
			for _, p := range cluster.OSU() {
				fmt.Println(" ", microbench.LogP(p))
			}
			return 0
		}

		var log *os.File
		if *verbose {
			log = os.Stderr
		}
		r := experiments.NewRunner(*quick, log)
		r.Jobs = *jobs
		r.Shards = *shards

		if *fig == 0 {
			r.RunMicro(os.Stdout)
			fmt.Println(report.RenderComparisons(
				"Paper-vs-simulated anchors (Section 3 quotes)", r.MicroComparisons(), 0.15))
			return 0
		}
		figs := map[int]func() report.Figure{
			1: r.Fig1, 2: r.Fig2, 3: r.Fig3, 4: r.Fig4, 5: r.Fig5, 6: r.Fig6,
			7: r.Fig7, 8: r.Fig8, 9: r.Fig9, 10: r.Fig10, 11: r.Fig11,
			12: r.Fig12, 13: r.Fig13, 26: r.Fig26, 27: r.Fig27,
		}
		f, ok := figs[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "mpibench: no micro-benchmark figure %d\n", *fig)
			return 2
		}
		if *plot {
			fmt.Println(f().Plot(64, 18))
			return 0
		}
		if *csv {
			fmt.Print(f().CSV())
			return 0
		}
		fmt.Println(f().Render())
		return 0
	}))
}

// runObserved executes the instrumented demo workload and writes the
// requested artifacts. -blame implies full tracing when -tracemsgs is 0.
func runObserved(net, metricsPath, tracePath, blamePath string, traceEvery, shards int) error {
	p, err := experiments.PlatformByName(net)
	if err != nil {
		return err
	}
	if shards > 1 {
		p = p.With(cluster.WithShards(shards))
	}
	if blamePath != "" && traceEvery <= 0 {
		traceEvery = 1
	}
	w, err := experiments.ObserveTraced(p, traceEvery)
	if err != nil {
		return err
	}
	if metricsPath != "" {
		var b bytes.Buffer
		w.Metrics().Snapshot().RenderGrouped(&b)
		if err := writeOut(metricsPath, b.Bytes()); err != nil {
			return err
		}
	}
	if tracePath != "" {
		var b bytes.Buffer
		if err := w.WriteChromeTrace(&b); err != nil {
			return err
		}
		if err := writeOut(tracePath, b.Bytes()); err != nil {
			return err
		}
	}
	if blamePath != "" {
		var b bytes.Buffer
		if err := report.WriteBlameJSON(&b, w.MsgTrace().Analyze(5)); err != nil {
			return err
		}
		if err := writeOut(blamePath, b.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// writeOut writes data to path, with - meaning stdout.
func writeOut(path string, data []byte) error {
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "mpibench: wrote %s\n", path)
	return nil
}
