// Command nasbench runs the paper's application workloads — the NAS
// Parallel Benchmarks and sweep3D (Section 4) — on the simulated testbeds.
//
// Usage:
//
//	nasbench                          # Figures 14-25, 28 and Tables 1-6
//	nasbench -app LU -net QSN -procs 8
//	nasbench -quick                   # class S smoke run
//	nasbench -app LU -procs 1024 -topo clos:3:24:2 -shards 8
//
// Single-app mode prints the execution time and the per-process
// communication profile.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"mpinet/internal/apps"
	"mpinet/internal/cluster"
	"mpinet/internal/experiments"
	"mpinet/internal/trace"
)

// topoOptions translates the -topo/-routing/-shards flags into platform
// options. An empty -topo keeps the classic auto-sized crossbar.
func topoOptions(topo, routing string, shards int) ([]cluster.Option, error) {
	var opts []cluster.Option
	if topo != "" {
		parts := strings.Split(topo, ":")
		ints := make([]int, 0, len(parts)-1)
		for _, s := range parts[1:] {
			v, err := strconv.Atoi(s)
			if err != nil {
				return nil, fmt.Errorf("bad -topo %q: %v", topo, err)
			}
			ints = append(ints, v)
		}
		switch {
		case parts[0] == "crossbar" && len(ints) == 0:
			opts = append(opts, cluster.Crossbar())
		case parts[0] == "fattree" && len(ints) == 2:
			opts = append(opts, cluster.FatTree(ints[0], ints[1]))
		case parts[0] == "clos" && len(ints) == 3:
			opts = append(opts, cluster.Clos(ints[0], ints[1], ints[2]))
		default:
			return nil, fmt.Errorf("bad -topo %q: want crossbar, fattree:RADIX:OVERSUB or clos:LEVELS:RADIX:OVERSUB", topo)
		}
	}
	switch routing {
	case "":
	case "deterministic":
		opts = append(opts, cluster.WithRouting(cluster.Deterministic))
	case "adaptive":
		opts = append(opts, cluster.WithRouting(cluster.Adaptive))
	default:
		return nil, fmt.Errorf("bad -routing %q: want deterministic or adaptive", routing)
	}
	if shards > 1 {
		opts = append(opts, cluster.WithShards(shards))
	}
	return opts, nil
}

func main() {
	app := flag.String("app", "", "run one workload (IS CG MG LU FT SP BT S3D-50 S3D-150)")
	net := flag.String("net", "IBA", "interconnect: IBA, Myri, QSN, IBA-PCI, IBA-Topspin")
	procs := flag.Int("procs", 8, "number of MPI processes")
	perNode := flag.Int("ppn", 1, "processes per node (2 = the paper's SMP mode)")
	classB := flag.Bool("classB", true, "use the paper's class B size (false = class S)")
	quick := flag.Bool("quick", false, "full suite in class S smoke mode")
	topo := flag.String("topo", "", "fabric topology: crossbar, fattree:RADIX:OVERSUB, clos:LEVELS:RADIX:OVERSUB")
	routing := flag.String("routing", "", "up-link routing on a multi-stage topology: deterministic, adaptive")
	shards := flag.Int("shards", 1, "event-loop shards (requires -topo for worlds past one shard)")
	timeline := flag.Int("timeline", 0, "with -app: dump the first N message events")
	util := flag.Bool("util", false, "with -app: print the busiest hardware resources")
	verbose := flag.Bool("v", false, "print progress to stderr")
	flag.Parse()

	var log *os.File
	if *verbose {
		log = os.Stderr
	}

	if *app == "" {
		r := experiments.NewRunner(*quick, log)
		r.RunApps(os.Stdout)
		return
	}

	platforms := map[string]cluster.Platform{
		"IBA": cluster.IBA(), "Myri": cluster.Myri(), "QSN": cluster.QSN(),
		"IBA-PCI": cluster.IBAPCI(), "IBA-Topspin": cluster.Topspin(),
	}
	p, ok := platforms[*net]
	if !ok {
		fmt.Fprintf(os.Stderr, "nasbench: unknown network %q\n", *net)
		os.Exit(2)
	}
	opts, err := topoOptions(*topo, *routing, *shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nasbench:", err)
		os.Exit(2)
	}
	p = p.With(opts...)
	a, err := apps.ByName(*app)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nasbench:", err)
		os.Exit(2)
	}
	class := apps.ClassS
	if *classB {
		class = apps.ClassB
	}
	var tl *trace.Timeline
	if *timeline > 0 {
		tl = &trace.Timeline{Max: *timeline}
	}
	res, err := a.Run(apps.RunConfig{Platform: p, Class: class, Procs: *procs, ProcsPerNode: *perNode, Timeline: tl, Utilization: *util})
	if err != nil {
		fmt.Fprintln(os.Stderr, "nasbench:", err)
		os.Exit(1)
	}
	fmt.Printf("%s class %s on %s, %d procs (%d/node): %.3f s\n",
		res.App, res.Class, res.Net, res.Procs, *perNode, res.Elapsed.Seconds())
	pr := res.PerRank
	fmt.Printf("per-process profile (rank 0):\n")
	fmt.Printf("  size classes <2K/2K-16K/16K-1M/>1M: %d / %d / %d / %d\n",
		pr.SizeHist[0], pr.SizeHist[1], pr.SizeHist[2], pr.SizeHist[3])
	fmt.Printf("  non-blocking: %d isend (avg %d B), %d irecv (avg %d B)\n",
		pr.IsendCalls, pr.AvgIsendSize(), pr.IrecvCalls, pr.AvgIrecvSize())
	fmt.Printf("  collectives: %d calls, %.2f%% of calls, %.2f%% of volume\n",
		pr.CollCalls, pr.CollectiveCallShare()*100, pr.CollectiveVolumeShare()*100)
	fmt.Printf("  buffer reuse: %.2f%% (%.2f%% weighted)\n",
		pr.ReuseRate()*100, pr.WeightedReuseRate()*100)
	ag := res.Profile
	fmt.Printf("cluster-wide: %d MPI calls, intra-node %.2f%% of pt2pt calls, %.2f%% of volume\n",
		ag.TotalCalls, ag.IntraNodeCallShare()*100, ag.IntraNodeVolumeShare()*100)
	if tl != nil {
		fmt.Printf("\nmessage timeline (first %d events):\n", *timeline)
		tl.Render(os.Stdout)
		counts, meanWait := tl.Stats()
		fmt.Printf("\nevent counts: %v\nmean recv post-to-complete: %v\n", counts, meanWait)
	}
	if *util && len(res.Utilizations) > 0 {
		fmt.Printf("\nbusiest hardware resources (of %v elapsed):\n", res.Elapsed)
		us := res.Utilizations
		sort.Slice(us, func(i, j int) bool { return us[i].Busy > us[j].Busy })
		for i, u := range us {
			if i == 10 {
				break
			}
			fmt.Printf("  %-22s busy %10v  (%5.1f%%)  %d jobs\n",
				u.Resource, u.Busy, float64(u.Busy)/float64(res.Elapsed)*100, u.Jobs)
		}
	}
}
