// Command lowbench benchmarks the vendor messaging layers directly (VAPI,
// GM, Elan3lib) — below MPI — reproducing the methodology of the authors'
// companion Hot Interconnects study. Comparing its output with mpibench's
// isolates what each MPI implementation costs on top of its substrate.
//
// Usage:
//
//	lowbench
package main

import (
	"fmt"

	"mpinet/internal/cluster"
	"mpinet/internal/lowlevel"
	"mpinet/internal/microbench"
	"mpinet/internal/units"
)

func main() {
	fmt.Println("Messaging-layer (below-MPI) benchmarks")
	fmt.Println()
	fmt.Printf("%-6s %14s %14s %14s %14s %16s\n",
		"net", "raw lat (us)", "MPI lat (us)", "raw bw MB/s", "MPI bw MB/s", "reg us/64pages")
	for _, p := range cluster.OSU() {
		rawLat := lowlevel.Latency(p, 8).Micros()
		mpiLat := microbench.Latency(p, []int64{8}).Y[0]
		rawBW := lowlevel.Bandwidth(p, 512*units.KB, 8)
		mpiBW := microbench.Bandwidth(p, []int64{512 * units.KB}, 16).Y[0]
		reg := lowlevel.RegistrationCost(p, 64).Micros()
		fmt.Printf("%-6s %14.2f %14.2f %14.0f %14.0f %16.1f\n",
			p.Name, rawLat, mpiLat, rawBW, mpiBW, reg)
	}
	fmt.Println()
	fmt.Println("Host overhead split (per message, 4B):")
	for _, p := range cluster.OSU() {
		s, r := lowlevel.HostOverheads(p, 4)
		fmt.Printf("  %-6s send %5.2f us   recv %5.2f us\n", p.Name, s.Micros(), r.Micros())
	}
	fmt.Println()
	fmt.Println("The MPI-minus-raw latency gap is each implementation's protocol cost;")
	fmt.Println("Quadrics' gap is the largest — its library does the most host work —")
	fmt.Println("exactly the paper's host-overhead finding viewed from below.")
}
