// Command paperrepro runs the complete reproduction — every figure and
// table of the paper's evaluation — and writes a results document with
// paper-vs-simulated comparisons.
//
// Usage:
//
//	paperrepro [-o EXPERIMENTS.md] [-quick] [-j N] [-shards N] [-benchjson FILE]
//	paperrepro [-metrics FILE] [-tracefile FILE] [-blame FILE] [-tracemsgs N] [-obsnet IBA|Myri|QSN]
//	paperrepro -postmortem [-obsnet IBA|Myri|QSN] [-droprate P] [-seed N]
//	paperrepro -faults [-droprate P] [-seed N] [-faultnet IBA|Myri|QSN]
//	paperrepro -railfail [-railpair IBA+Myri] [-railpolicy failover|stripe] [-seed N]
//	paperrepro -chaos [-faultnet IBA|Myri|QSN] [-routing deterministic|adaptive] [-seed N]
//
// With -o - the document goes to stdout. A full (class B) run simulates
// several hundred cluster executions and takes a few minutes of wall-clock
// time; -quick produces the same document from class S workloads and
// thinned sweeps in seconds (for smoke-testing the harness, not for
// comparisons).
//
// Each figure and table is an independent simulation, so the suite fans out
// over -j worker goroutines (default: one per core) with output committed
// in figure order — the document is byte-identical for every -j value.
// -shards N additionally partitions each simulated world's event queue into
// N conservatively synchronized shards (docs/MODEL.md §17); like -j it is an
// execution knob only, and the document is byte-identical for every value.
// -benchjson additionally writes a host-performance record of the run
// (per-task wall-clock, total wall-clock, simulation events/sec; - for
// stdout), which scripts/bench.sh folds into BENCH_parallel.json.
//
// The second form runs the instrumented observability demo workload
// instead of the reproduction: -metrics writes the cross-layer metrics
// snapshot, -tracefile writes a Chrome trace_event JSON (open in
// chrome://tracing or https://ui.perfetto.dev), -blame writes the
// per-message critical-path blame report as machine-readable JSON, and
// -obsnet picks the interconnect (default IBA). -tracemsgs N enables
// per-message span tracing at 1-in-N sampling (-blame implies N=1 when
// unset) and adds message-flow arrows to the Chrome trace. Any output
// flag can be - for stdout. -postmortem runs the fault-injected tracing
// demo instead: LU class S under -droprate drops plus a rail kill at 50%
// of the healthy run, dumping the flight recorder and the blame report
// that names the failing rank and stage.
//
// The third form runs the fault-injection smoke instead: a seeded latency
// probe plus LU class S under -droprate uniform packet loss (default 1%),
// reporting injector and NIC recovery counters. Runs are deterministic in
// -seed (0 = the committed experiment seed); the same seed always drops
// the same packets. See docs/MODEL.md §12.
//
// The fourth form runs the multi-rail failover smoke: LU class S on a
// bonded pair of interconnects, once healthy to calibrate, once with the
// primary rail killed at 50% of the healthy elapsed (must complete via
// failover), and once on the solo primary under the same plan (must fail
// with a typed error). See docs/MODEL.md §13.
//
// The fifth form runs the chaos soak: the kill-storm matrix on a 64-node
// 3-level Clos — a spine plane killed and repaired, a multi-element storm,
// a host crash with and without ULFM-style fault tolerance, and a full
// partition — verifying each scenario completes or fails with a typed
// error, never hangs. -faultnet empty runs all three interconnects;
// -routing picks the fabric's path policy. See docs/MODEL.md §19.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"mpinet/internal/cluster"
	"mpinet/internal/experiments"
	"mpinet/internal/profiling"
	"mpinet/internal/report"
	"mpinet/internal/sim"
)

func main() {
	out := flag.String("o", "-", "output file (- = stdout)")
	quick := flag.Bool("quick", false, "class S smoke mode")
	jobs := flag.Int("j", runtime.NumCPU(), "experiments to run concurrently (output is identical for any value)")
	shards := flag.Int("shards", 1, "event-queue shards per simulated world (output is identical for any value)")
	benchOut := flag.String("benchjson", "", "also write a host-performance JSON record of the run (- = stdout)")
	csvDir := flag.String("csv", "", "also write each figure/table as CSV into this directory")
	metricsOut := flag.String("metrics", "", "run the observability demo, write its metrics snapshot here (- = stdout), and exit")
	traceOut := flag.String("tracefile", "", "run the observability demo, write a Chrome trace_event JSON here (- = stdout), and exit")
	obsNet := flag.String("obsnet", "IBA", "interconnect for the observability demo (IBA, Myri or QSN)")
	traceMsgs := flag.Int("tracemsgs", 0, "per-message tracing for the observability demo: trace 1 in N messages (0 = off, 1 = all); adds flow arrows to -tracefile")
	blameOut := flag.String("blame", "", "run the traced observability demo, write the critical-path blame report JSON here (- = stdout), and exit")
	postmortem := flag.Bool("postmortem", false, "run the fault-injected postmortem demo (LU class S under drops + a rail kill) and print its flight-recorder dump and blame report")
	faultsRun := flag.Bool("faults", false, "run the fault-injection smoke (latency probe + LU class S under -droprate) and exit")
	dropRate := flag.Float64("droprate", 0.01, "per-packet drop probability for -faults (0 = healthy control)")
	seed := flag.Uint64("seed", 0, "fault-plan seed for -faults (0 = the committed experiment seed)")
	faultNet := flag.String("faultnet", "", "interconnect for -faults (IBA, Myri or QSN; empty = all three)")
	chaosRun := flag.Bool("chaos", false, "run the chaos soak (kill storms on a 3-level Clos: spine death, host crash, partition) and exit")
	routing := flag.String("routing", "deterministic", "fabric routing policy for -chaos (deterministic or adaptive)")
	railRun := flag.Bool("railfail", false, "run the rail-failover smoke (LU class S on a bonded pair, primary killed mid-run) and exit")
	railPair := flag.String("railpair", "IBA+Myri", "bonded pair for -railfail (2-3 of IBA, Myri, QSN joined by +)")
	railPolicy := flag.String("railpolicy", "failover", "bond policy for -railfail (failover or stripe)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write an allocation profile at exit to this file (go tool pprof)")
	flag.Parse()

	os.Exit(profiling.Run(*cpuProfile, *memProfile, "paperrepro", func() int {
		return run(runOpts{
			out: *out, quick: *quick, jobs: *jobs, shards: *shards, benchOut: *benchOut,
			csvDir: *csvDir, metricsOut: *metricsOut, traceOut: *traceOut,
			obsNet: *obsNet, traceMsgs: *traceMsgs, blameOut: *blameOut,
			postmortem: *postmortem, faultsRun: *faultsRun, dropRate: *dropRate,
			seed: *seed, faultNet: *faultNet, railRun: *railRun,
			railPair: *railPair, railPolicy: *railPolicy,
			chaosRun: *chaosRun, routing: *routing,
		})
	}))
}

type runOpts struct {
	out        string
	quick      bool
	jobs       int
	shards     int
	benchOut   string
	csvDir     string
	metricsOut string
	traceOut   string
	obsNet     string
	traceMsgs  int
	blameOut   string
	postmortem bool
	faultsRun  bool
	dropRate   float64
	seed       uint64
	faultNet   string
	railRun    bool
	railPair   string
	railPolicy string
	chaosRun   bool
	routing    string
}

func run(o runOpts) int {
	if o.chaosRun {
		nets := []string{"IBA", "Myri", "QSN"}
		if o.faultNet != "" {
			nets = []string{o.faultNet}
		}
		for _, net := range nets {
			if err := experiments.ChaosSoak(os.Stdout, net, o.routing, o.seed, o.shards); err != nil {
				fmt.Fprintln(os.Stderr, "paperrepro:", err)
				return 1
			}
		}
		return 0
	}

	if o.railRun {
		if err := experiments.RailFailSmoke(os.Stdout, o.railPair, o.railPolicy, o.seed, o.shards); err != nil {
			fmt.Fprintln(os.Stderr, "paperrepro:", err)
			return 1
		}
		return 0
	}

	if o.postmortem {
		if err := experiments.Postmortem(os.Stdout, o.obsNet, o.dropRate, o.seed, o.shards); err != nil {
			fmt.Fprintln(os.Stderr, "paperrepro:", err)
			return 1
		}
		return 0
	}

	if o.faultsRun {
		nets := []string{"IBA", "Myri", "QSN"}
		if o.faultNet != "" {
			nets = []string{o.faultNet}
		}
		for _, net := range nets {
			if err := experiments.FaultSmoke(os.Stdout, net, o.dropRate, o.seed, o.shards); err != nil {
				fmt.Fprintln(os.Stderr, "paperrepro:", err)
				return 1
			}
		}
		return 0
	}

	if o.metricsOut != "" || o.traceOut != "" || o.blameOut != "" {
		if err := runObserved(o.obsNet, o.metricsOut, o.traceOut, o.blameOut, o.traceMsgs, o.shards); err != nil {
			fmt.Fprintln(os.Stderr, "paperrepro:", err)
			return 1
		}
		return 0
	}

	r := experiments.NewRunner(o.quick, os.Stderr)
	r.Jobs = o.jobs
	r.Shards = o.shards
	start := time.Now()

	if o.csvDir != "" {
		if err := writeCSVs(r, o.csvDir); err != nil {
			fmt.Fprintln(os.Stderr, "paperrepro:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "paperrepro: wrote CSVs to %s\n", o.csvDir)
	}

	var b bytes.Buffer
	write(&b, r, o.quick)

	if o.out == "-" {
		fmt.Print(b.String())
	} else if err := os.WriteFile(o.out, b.Bytes(), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "paperrepro:", err)
		return 1
	} else {
		fmt.Fprintf(os.Stderr, "paperrepro: wrote %s\n", o.out)
	}

	if o.benchOut != "" {
		if err := writeBenchJSON(o.benchOut, r, o.jobs, time.Since(start)); err != nil {
			fmt.Fprintln(os.Stderr, "paperrepro:", err)
			return 1
		}
	}
	return 0
}

// benchRecord is the host-performance record -benchjson emits: how fast the
// suite ran on this machine at this -j, and how much simulation work it did.
// Unlike the document it accompanies, its values vary run to run.
type benchRecord struct {
	Jobs         int             `json:"jobs"`
	GOMAXPROCS   int             `json:"gomaxprocs"`
	WallSeconds  float64         `json:"wall_seconds"`
	Events       uint64          `json:"events_dispatched"`
	EventsPerSec float64         `json:"events_per_sec"`
	Tasks        []benchTaskTime `json:"tasks"`
}

type benchTaskTime struct {
	Name        string  `json:"name"`
	WallSeconds float64 `json:"wall_seconds"`
}

// writeBenchJSON records the run's host wall-clock profile.
func writeBenchJSON(path string, r *experiments.Runner, jobs int, wall time.Duration) error {
	rec := benchRecord{
		Jobs:        jobs,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		WallSeconds: wall.Seconds(),
		Events:      sim.TotalDispatched(),
	}
	if s := wall.Seconds(); s > 0 {
		rec.EventsPerSec = float64(rec.Events) / s
	}
	for _, t := range r.Timings() {
		rec.Tasks = append(rec.Tasks, benchTaskTime{Name: t.Name, WallSeconds: t.Wall.Seconds()})
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return writeOut(path, append(data, '\n'))
}

// runObserved executes the instrumented demo workload and writes the
// requested artifacts. -blame implies full tracing when -tracemsgs is 0.
func runObserved(net, metricsPath, tracePath, blamePath string, traceEvery, shards int) error {
	p, err := experiments.PlatformByName(net)
	if err != nil {
		return err
	}
	if shards > 1 {
		p = p.With(cluster.WithShards(shards))
	}
	if blamePath != "" && traceEvery <= 0 {
		traceEvery = 1
	}
	w, err := experiments.ObserveTraced(p, traceEvery)
	if err != nil {
		return err
	}
	if metricsPath != "" {
		var b bytes.Buffer
		w.Metrics().Snapshot().RenderGrouped(&b)
		if err := writeOut(metricsPath, b.Bytes()); err != nil {
			return err
		}
	}
	if tracePath != "" {
		var b bytes.Buffer
		if err := w.WriteChromeTrace(&b); err != nil {
			return err
		}
		if err := writeOut(tracePath, b.Bytes()); err != nil {
			return err
		}
	}
	if blamePath != "" {
		var b bytes.Buffer
		if err := report.WriteBlameJSON(&b, w.MsgTrace().Analyze(5)); err != nil {
			return err
		}
		if err := writeOut(blamePath, b.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// writeOut writes data to path, with - meaning stdout.
func writeOut(path string, data []byte) error {
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "paperrepro: wrote %s\n", path)
	return nil
}

// writeCSVs regenerates every figure and table as machine-readable files
// (the Runner's cache makes this nearly free once the document has run).
func writeCSVs(r *experiments.Runner, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	figs := map[string]func() report.Figure{
		"fig01": r.Fig1, "fig02": r.Fig2, "fig03": r.Fig3, "fig04": r.Fig4,
		"fig05": r.Fig5, "fig06": r.Fig6, "fig07": r.Fig7, "fig08": r.Fig8,
		"fig09": r.Fig9, "fig10": r.Fig10, "fig11": r.Fig11, "fig12": r.Fig12,
		"fig13": r.Fig13, "fig26": r.Fig26, "fig27": r.Fig27,
	}
	names := make([]string, 0, len(figs))
	for name := range figs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := os.WriteFile(filepath.Join(dir, name+".csv"), []byte(figs[name]().CSV()), 0o644); err != nil {
			return err
		}
	}
	tables := map[string]func() report.Table{
		"figs14-17": r.Figs14to17, "table1": r.Tab1, "table2": r.Tab2,
		"table3": r.Tab3, "table4": r.Tab4, "table5": r.Tab5, "table6": r.Tab6,
		"fig24": r.Fig24, "fig25": r.Fig25, "fig28": r.Fig28,
	}
	tnames := make([]string, 0, len(tables))
	for name := range tables {
		tnames = append(tnames, name)
	}
	sort.Strings(tnames)
	for _, name := range tnames {
		if err := os.WriteFile(filepath.Join(dir, name+".csv"), []byte(tables[name]().CSV()), 0o644); err != nil {
			return err
		}
	}
	for i, f := range r.Figs18to23() {
		name := fmt.Sprintf("fig%d", 18+i)
		if err := os.WriteFile(filepath.Join(dir, name+".csv"), []byte(f.CSV()), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func write(b *bytes.Buffer, r *experiments.Runner, quick bool) {
	fmt.Fprintf(b, "# EXPERIMENTS — paper vs. simulation\n\n")
	fmt.Fprintf(b, "Reproduction record for every figure and table of Liu et al.,\n")
	fmt.Fprintf(b, "\"Performance Comparison of MPI Implementations over InfiniBand, Myrinet\n")
	fmt.Fprintf(b, "and Quadrics\" (SC'03). Generated by `go run ./cmd/paperrepro -o EXPERIMENTS.md`.\n")
	if quick {
		fmt.Fprintf(b, "\n**QUICK MODE** — class S workloads, thinned sweeps; not for comparison.\n")
	}
	fmt.Fprintf(b, "\nAbsolute numbers are simulated; the paper's testbed was physical hardware.\n")
	fmt.Fprintf(b, "The contract (DESIGN.md §5) is: anchor values the paper quotes are matched\n")
	fmt.Fprintf(b, "by calibration, and every *comparison* — which network wins, by what\n")
	fmt.Fprintf(b, "factor, where curves cross — emerges from the interconnect mechanisms.\n\n")

	fmt.Fprintf(b, "## Micro-benchmark anchors (Section 3)\n\n```\n")
	b.WriteString(report.RenderComparisons("Anchors quoted in the paper's text", r.MicroComparisons(), 0.15))
	fmt.Fprintf(b, "```\n\n")

	fmt.Fprintf(b, "## Micro-benchmark figures\n\n```\n")
	r.RunMicro(b)
	fmt.Fprintf(b, "```\n\n")

	fmt.Fprintf(b, "## Application results (Section 4)\n\n")
	fmt.Fprintf(b, "### Table 2: execution times, paper vs simulated\n\n```\n")
	b.WriteString(report.RenderComparisons("Class B times (s)", r.Table2Comparisons(), 0.10))
	fmt.Fprintf(b, "```\n\n")

	fmt.Fprintf(b, "### Table 1: per-process message-size profile, paper vs simulated\n\n```\n")
	b.WriteString(report.RenderComparisons("Calls per size class", r.Table1Comparisons(), 0.25))
	fmt.Fprintf(b, "```\n\n")

	fmt.Fprintf(b, "### Full application figures and tables\n\n```\n")
	r.RunApps(b)
	fmt.Fprintf(b, "```\n\n")

	fmt.Fprintf(b, "## Extensions beyond the paper (DESIGN.md §6)\n\n```\n")
	r.RunExtensions(b)
	fmt.Fprintf(b, "```\n\n")

	b.WriteString(deviations)
}

var deviations = strings.TrimLeft(`
## Known deviations

These are the places where the simulation reproduces the paper's direction
but not its magnitude, with the reason:

1. **Bi-directional latency degradation (Fig 4).** Paper: Myri 6.7→10.1 us,
   QSN 4.6→7.4 us. Simulated degradations are ~1.5 us — the GM-ACK and
   shared-bus mechanisms capture the direction (IBA nearly flat, the other
   two visibly worse) but not the full magnitude of the vendors' firmware
   behaviour.
2. **IS network gap (Fig 14/Table 2).** Paper: InfiniBand beats Myrinet by
   38% and Quadrics by 28% on 8 nodes; simulated gaps are ~15-21%. The
   remaining spread likely came from alltoallv congestion pathologies our
   switch model smooths over.
3. **Quadrics on sweep3D-50 (Fig 17).** The paper measures QSN 22% slower
   than the others at the small problem size; per-message cost accounting
   cannot reproduce a gap that large, and the simulation shows rough parity
   (it does reproduce the S3D-150 ordering).
4. **Quadrics window >16 (Fig 2 text).** The figure's window-4-vs-16 data
   reproduces; the text's claim that deeper windows degrade shows only
   weakly, because in our model the NIC (not the command queue) is the
   streaming bottleneck at those sizes.
5. **Small-message collective magnitudes (Figs 11-12).** The orderings the
   paper stresses reproduce exactly (Alltoall: IBA < Myri << QSN;
   Allreduce: QSN < IBA), and Quadrics' Allreduce matches to a few percent,
   but absolute Alltoall times run low (IBA 13 vs 31 us) — MPICH 1.2.x
   evidently paid per-request overheads beyond our per-message model —
   and Myrinet's Allreduce runs ~20% high.
6. **The 4-node CG anomaly (Table 2).** The paper's CG is *slower* on 4
   InfiniBand nodes than on 4 Myrinet/Quadrics nodes (81.6 vs 74.4/73.1 s)
   — an IBA-specific effect on that one configuration. The shared compute
   model pins the IBA column, so the emergent Myri/QSN 4-node cells inherit
   the anomaly and read ~13-16% high.
7. **MG profile details (Tables 1, 3).** Counts and classes are close
   (mid-size calls +50% on a 630-call row); the paper's 270 KB average
   Irecv suggests wider ghost faces than the canonical class B
   decomposition implies, and we kept the canonical sizes.
`, "\n")
